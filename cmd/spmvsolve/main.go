// Command spmvsolve runs an iterative solver (CG or GMRES) whose SpMV
// uses the tuner's optimized native kernel — the application context
// that motivates the paper's overhead analysis (Section IV-D).
//
//	spmvsolve -gen poisson2d -n 40000            # CG on a 200x200 grid
//	spmvsolve -mtx system.mtx -method gmres
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/sparsekit/spmvtuner"
	"github.com/sparsekit/spmvtuner/internal/gen"
	"github.com/sparsekit/spmvtuner/internal/matrix"
	"github.com/sparsekit/spmvtuner/internal/mmio"
	"github.com/sparsekit/spmvtuner/internal/solver"
)

func main() {
	var (
		mtxPath = flag.String("mtx", "", "Matrix Market system matrix")
		genKind = flag.String("gen", "", "synthetic system: poisson2d, poisson3d, banded")
		n       = flag.Int("n", 40000, "size for -gen")
		method  = flag.String("method", "cg", "solver: cg or gmres")
		tol     = flag.Float64("tol", 1e-8, "relative residual tolerance")
		maxIt   = flag.Int("maxiter", 0, "iteration cap (0 = 10n)")
		precond = flag.Bool("jacobi", true, "apply Jacobi preconditioning (cg only)")
	)
	flag.Parse()

	csr, err := load(*mtxPath, *genKind, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmvsolve:", err)
		os.Exit(1)
	}
	if csr.NRows != csr.NCols {
		fmt.Fprintln(os.Stderr, "spmvsolve: system matrix must be square")
		os.Exit(1)
	}

	// Tune SpMV for this matrix on the host.
	m := wrap(csr)
	start := time.Now()
	tuned := spmvtuner.NewTuner().Tune(m)
	tuneTime := time.Since(start)
	fmt.Printf("matrix  %d x %d, %d nonzeros\n", csr.NRows, csr.NCols, csr.NNZ())
	fmt.Printf("tuned   classes %s, optimizations %s (%.1f ms)\n",
		tuned.Classes(), tuned.Optimizations(), tuneTime.Seconds()*1e3)

	b := make([]float64, csr.NRows)
	for i := range b {
		b[i] = 1
	}
	// The tuned kernel IS the solver's SpMV: for SPD systems the tuner
	// detects symmetry and routes every CG iteration through the
	// symmetric SSS storage path when the classifier deems it
	// bandwidth bound (the optimizations line above says which).
	mul := solver.MulVec(tuned.MulVec)
	opts := solver.Options{Tol: *tol, MaxIters: *maxIt}
	if *precond && *method == "cg" {
		opts.Precond = solver.Jacobi(csr)
	}

	start = time.Now()
	var res solver.Result
	switch *method {
	case "cg":
		res, err = solver.CG(mul, b, opts)
	case "gmres":
		res, err = solver.GMRES(mul, b, 30, opts)
	default:
		err = fmt.Errorf("unknown method %q", *method)
	}
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmvsolve:", err)
		os.Exit(1)
	}
	fmt.Printf("solve   %s: %d iterations, residual %.3g, converged=%v, %.1f ms\n",
		*method, res.Iters, res.Residual, res.Converged, elapsed.Seconds()*1e3)
}

func load(mtxPath, genKind string, n int) (*matrix.CSR, error) {
	switch {
	case mtxPath != "" && genKind != "":
		return nil, fmt.Errorf("use either -mtx or -gen, not both")
	case mtxPath != "":
		return mmio.ReadFile(mtxPath)
	case genKind == "poisson2d":
		side := 1
		for side*side < n {
			side++
		}
		return gen.Poisson2D(side, side), nil
	case genKind == "poisson3d":
		side := 1
		for side*side*side < n {
			side++
		}
		return gen.Poisson3D(side, side, side), nil
	case genKind == "banded":
		return gen.Banded(n, 4, 1.0, 1), nil
	default:
		return nil, fmt.Errorf("provide -mtx FILE or -gen {poisson2d,poisson3d,banded}")
	}
}

// wrap converts an internal CSR into the public Matrix type via the
// builder (cmd binaries live inside the module, but the public API is
// what downstream users exercise — the solve path goes through it on
// purpose).
func wrap(csr *matrix.CSR) *spmvtuner.Matrix {
	b := spmvtuner.NewBuilder(csr.NRows, csr.NCols)
	for i := 0; i < csr.NRows; i++ {
		for j := csr.RowPtr[i]; j < csr.RowPtr[i+1]; j++ {
			b.Add(i, int(csr.ColInd[j]), csr.Val[j])
		}
	}
	return b.Build()
}
