// Command spmvbench regenerates the paper's tables and figures from
// the reproduction (see DESIGN.md for the experiment index):
//
//	spmvbench -exp fig1                 # Fig 1 on the KNC model
//	spmvbench -exp fig3                 # Fig 3 bounds on KNC
//	spmvbench -exp fig7 -platform knl   # one Fig 7 panel
//	spmvbench -exp table4               # classifier accuracy
//	spmvbench -exp table5               # overhead amortization
//	spmvbench -exp platforms            # Table III
//	spmvbench -exp reuse -scale 0.1     # engine: one-shot vs prepared
//	spmvbench -exp sellcs -scale 0.1    # SELL-C-σ vs CSR vector kernel
//	spmvbench -exp spmm -scale 0.1      # blocked SpMM vs per-vector loop
//	spmvbench -exp sym -scale 0.1       # symmetric SSS vs expanded CSR
//	spmvbench -exp warm -scale 0.1      # plan store: cold tune vs warm start
//	spmvbench -exp serve -scale 0.1     # serving: coalesced vs sequential
//	spmvbench -exp twin -scale 0.1      # digital twin: predicted vs measured Gflops
//	spmvbench -exp kernels -scale 0.1   # SIMD assembly kernels vs scalar oracles
//	spmvbench -exp mixed -scale 0.25    # reduced-precision value streams vs f64
//	spmvbench -exp all -scale 0.25      # every modeled experiment
//
// The reuse, sellcs, spmm, sym, warm and serve experiments run
// natively on the host through the persistent worker-pool engine;
// everything else is modeled, and "all" covers only the modeled set
// (request the native ones explicitly). The warm and serve
// experiments assert their own invariants (zero warm-path
// measurements and identical plans; coalesced throughput at least
// sequential and reference-exact answers) and exit nonzero when they
// fail, so CI can use them as smoke tests; twin likewise exits
// nonzero when the cost model's mean prediction error exceeds its
// gate, kernels exits nonzero when any assembly body runs slower
// than its scalar oracle, and mixed exits nonzero when a reduced
// value stream breaks its documented error bound or the geomean f32
// speedup over MB-classified matrices falls below its gate. -json
// writes the serve, twin, kernels or mixed result as JSON beside the
// table.
//
// Ablations: ablate-delta, ablate-split, ablate-sched,
// ablate-prefetch, ablate-partitioned-ml.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"github.com/sparsekit/spmvtuner/internal/experiments"
	"github.com/sparsekit/spmvtuner/internal/report"
)

func main() {
	// main exits through run so deferred cleanup (the CPU-profile
	// flush) always runs before os.Exit.
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spmvbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: fig1, fig3, fig7, table4, table5, platforms, features, reuse, sellcs, spmm, sym, warm, serve, twin, kernels, mixed, ablate-*, all")
		platform = flag.String("platform", "", "fig7 platform: knc, knl, bdw (default: all three)")
		scale    = flag.Float64("scale", 1.0, "suite size multiplier (1.0 = reproduction size)")
		corpus   = flag.Int("corpus", 210, "training corpus size")
		matrices = flag.String("matrix", "", "comma-separated suite subset")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonPath = flag.String("json", "", "also write the result as JSON to this path (serve, twin, kernels)")
		profile  = flag.String("cpuprofile", "", "write a CPU profile to this path (the PGO collection hook: a suite run's profile becomes cmd/spmvbench/default.pgo)")
	)
	flag.Parse()

	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	cfg := experiments.Config{Scale: *scale, CorpusSize: *corpus}
	if *matrices != "" {
		cfg.Matrices = strings.Split(*matrices, ",")
	}

	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}

	runFig7 := func(code string) error {
		res, err := experiments.Fig7(code, cfg)
		if err != nil {
			return err
		}
		emit(res.Table())
		return nil
	}

	var err error
	switch *exp {
	case "fig1":
		emit(experiments.Fig1(cfg).Table())
	case "fig3":
		emit(experiments.Fig3(cfg).Table())
	case "table4":
		emit(experiments.Table4(cfg).Table())
	case "table5":
		emit(experiments.Table5(cfg).Table())
	case "fig7":
		if *platform != "" {
			err = runFig7(*platform)
		} else {
			for _, code := range []string{"knc", "knl", "bdw"} {
				if err = runFig7(code); err != nil {
					break
				}
			}
		}
	case "platforms":
		emit(experiments.Platforms())
	case "features":
		emit(experiments.FeatureTable(cfg))
	case "reuse":
		emit(experiments.Reuse(cfg).Table())
	case "sellcs":
		emit(experiments.SellCS(cfg).Table())
	case "spmm":
		emit(experiments.SpMM(cfg).Table())
	case "sym":
		emit(experiments.Sym(cfg).Table())
	case "warm":
		var res *experiments.WarmResult
		if res, err = experiments.Warm(cfg); err == nil {
			emit(res.Table())
		}
	case "serve":
		var res *experiments.ServeResult
		if res, err = experiments.Serve(cfg); err == nil {
			emit(res.Table())
			if *jsonPath != "" {
				var buf []byte
				if buf, err = json.MarshalIndent(res, "", "  "); err == nil {
					err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
				}
			}
		}
	case "kernels":
		// The regression gate returns the result alongside the error:
		// emit the table either way so a failing gate shows which
		// (matrix, kernel) pair lost to the compiler.
		res, kerr := experiments.Kernels(cfg)
		if res != nil {
			emit(res.Table())
			if *jsonPath != "" {
				var buf []byte
				var jerr error
				if buf, jerr = json.MarshalIndent(res, "", "  "); jerr == nil {
					jerr = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
				}
				if kerr == nil {
					kerr = jerr
				}
			}
		}
		err = kerr
	case "mixed":
		// The mixed-precision gate returns the result alongside the
		// error: emit the table either way so a failing gate shows
		// which matrix lost or broke its error bound.
		res, merr := experiments.Mixed(cfg)
		if res != nil {
			emit(res.Table())
			if *jsonPath != "" {
				var buf []byte
				var jerr error
				if buf, jerr = json.MarshalIndent(res, "", "  "); jerr == nil {
					jerr = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
				}
				if merr == nil {
					merr = jerr
				}
			}
		}
		err = merr
	case "twin":
		// The accuracy gate returns the (partial) result alongside the
		// error: emit the table either way so a failing smoke still
		// shows which matrices missed.
		res, terr := experiments.Twin(cfg)
		if res != nil {
			emit(res.Table())
			if *jsonPath != "" {
				var buf []byte
				var jerr error
				if buf, jerr = json.MarshalIndent(res, "", "  "); jerr == nil {
					jerr = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
				}
				if terr == nil {
					terr = jerr
				}
			}
		}
		err = terr
	case "ablate-delta":
		emit(experiments.AblateDelta(cfg).Table())
	case "ablate-split":
		emit(experiments.AblateSplit(cfg).Table())
	case "ablate-sched":
		emit(experiments.AblateSched(cfg).Table())
	case "ablate-prefetch":
		emit(experiments.AblatePrefetch(cfg).Table())
	case "ablate-partitioned-ml":
		emit(experiments.PartitionedML(cfg).Table())
	case "all":
		emit(experiments.Platforms())
		emit(experiments.Fig1(cfg).Table())
		emit(experiments.Fig3(cfg).Table())
		emit(experiments.Table4(cfg).Table())
		for _, code := range []string{"knc", "knl", "bdw"} {
			if err = runFig7(code); err != nil {
				break
			}
		}
		if err == nil {
			emit(experiments.Table5(cfg).Table())
			emit(experiments.AblateDelta(cfg).Table())
			emit(experiments.AblateSplit(cfg).Table())
			emit(experiments.AblateSched(cfg).Table())
			emit(experiments.AblatePrefetch(cfg).Table())
			emit(experiments.PartitionedML(cfg).Table())
		}
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	return err
}
