// Command spmvlint runs the repo's analyzer suite (internal/lint)
// over package patterns and exits nonzero on any diagnostic. It is
// the static half of the invariant enforcement whose dynamic half is
// the alloc-guard and -race CI jobs:
//
//	go run ./cmd/spmvlint ./...
//
// Output format is one diagnostic per line:
//
//	file:line:col: analyzer: message
//
// Packages are resolved with `go list`, so patterns behave exactly
// like any other go command; test files are not analyzed. -tags
// selects build-tag variants the way go build does — CI lints both
// the assembly-dispatch and the `noasm` file sets of the kernel
// packages:
//
//	go run ./cmd/spmvlint -tags noasm ./...
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"github.com/sparsekit/spmvtuner/internal/lint"
	"github.com/sparsekit/spmvtuner/internal/lint/analysis"
)

// listedPackage is the subset of `go list -json` output the driver
// needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

func main() {
	tags := flag.String("tags", "", "comma-separated build tags, forwarded to go list (lint a tag variant, e.g. -tags noasm)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(*tags, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
		os.Exit(2)
	}

	// Pre-scan every package's syntax for //spmv:artifact markers so
	// cross-package artifact rules (strictjson on json.Unmarshal of
	// plan.Plan from another package) see the full index before any
	// analysis pass runs.
	facts := analysis.NewFacts()
	preFset := token.NewFileSet()
	for _, p := range pkgs {
		files, err := parseAll(preFset, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
			os.Exit(2)
		}
		lint.CollectArtifacts(p.ImportPath, files, facts)
	}

	loader := analysis.NewLoader()
	exit := 0
	for _, p := range pkgs {
		if len(p.GoFiles) == 0 {
			continue
		}
		var paths []string
		for _, f := range p.GoFiles {
			paths = append(paths, filepath.Join(p.Dir, f))
		}
		pkg, err := loader.Check(p.ImportPath, paths)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmvlint: %s: %v\n", p.ImportPath, err)
			os.Exit(2)
		}
		for _, a := range lint.Analyzers() {
			diags, err := pkg.Run(a, facts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spmvlint: %s: %v\n", p.ImportPath, err)
				os.Exit(2)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				fmt.Printf("%s: %s: %s\n", relPosition(pos), a.Name, d.Message)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}

// goList resolves package patterns through the go tool; tags selects
// the build-tag variant of each package's file list.
func goList(tags string, patterns []string) ([]listedPackage, error) {
	args := []string{"list", "-json"}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// parseAll parses a package's non-test files with comments, for the
// artifact pre-scan.
func parseAll(fset *token.FileSet, p listedPackage) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// relPosition renders a position relative to the working directory
// when possible, keeping output stable across checkouts.
func relPosition(pos token.Position) string {
	wd, err := os.Getwd()
	if err != nil {
		return pos.String()
	}
	if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !filepath.IsAbs(rel) {
		pos.Filename = rel
	}
	return pos.String()
}
