// Command spmvclassify diagnoses one sparse matrix on a platform: it
// prints the Table I features, the Section III-B performance bounds,
// the detected bottleneck classes (Fig 4), and the optimizations the
// tuner would apply (Table II).
//
//	spmvclassify -mtx matrix.mtx -platform knl
//	spmvclassify -suite rajat30 -platform knc
//
// With -json the tool emits the decision as the Plan IR instead — the
// same versioned, fingerprint-bound artifact the plan store persists,
// suitable for shipping to a serving host (docs/guide/plans.md):
//
//	spmvclassify -suite rajat30 -platform knl -json > rajat30.plan.json
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sparsekit/spmvtuner/internal/bounds"
	"github.com/sparsekit/spmvtuner/internal/classify"
	"github.com/sparsekit/spmvtuner/internal/core"
	"github.com/sparsekit/spmvtuner/internal/features"
	"github.com/sparsekit/spmvtuner/internal/machine"
	"github.com/sparsekit/spmvtuner/internal/matrix"
	"github.com/sparsekit/spmvtuner/internal/mmio"
	"github.com/sparsekit/spmvtuner/internal/plan"
	"github.com/sparsekit/spmvtuner/internal/report"
	"github.com/sparsekit/spmvtuner/internal/sim"
	"github.com/sparsekit/spmvtuner/internal/suite"
)

func main() {
	var (
		mtxPath   = flag.String("mtx", "", "Matrix Market file to classify")
		suiteName = flag.String("suite", "", "evaluation-suite matrix name (alternative to -mtx)")
		platform  = flag.String("platform", "knc", "platform model: knc, knl, bdw, host")
		scale     = flag.Float64("scale", 1.0, "suite scale when using -suite")
		asJSON    = flag.Bool("json", false, "emit the decision as the Plan IR (JSON) instead of tables")
	)
	flag.Parse()

	m, err := loadMatrix(*mtxPath, *suiteName, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmvclassify:", err)
		os.Exit(1)
	}
	mdl, err := machine.ByCodename(*platform)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmvclassify:", err)
		os.Exit(1)
	}

	p := core.New(sim.New(mdl))
	a := p.Analyze(m)
	if *asJSON {
		data, err := plan.Encode(a.Plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmvclassify:", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		return
	}
	printAnalysis(m, mdl, a)
}

func loadMatrix(mtxPath, suiteName string, scale float64) (*matrix.CSR, error) {
	switch {
	case mtxPath != "" && suiteName != "":
		return nil, fmt.Errorf("use either -mtx or -suite, not both")
	case mtxPath != "":
		return mmio.ReadFile(mtxPath)
	case suiteName != "":
		m := suite.ByName(suiteName, scale)
		if m == nil {
			return nil, fmt.Errorf("unknown suite matrix %q (see spmvbench -exp features for names)", suiteName)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("provide -mtx FILE or -suite NAME")
	}
}

func printAnalysis(m *matrix.CSR, mdl machine.Model, a core.Analysis) {
	name := m.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Printf("matrix   %s: %d x %d, %d nonzeros\n", name, m.NRows, m.NCols, m.NNZ())
	fmt.Printf("platform %s\n\n", mdl)

	ft := report.New("Table I features", "feature", "value")
	fs := a.Features
	for _, n := range features.AllNames() {
		ft.Add(string(n), report.F(fs.Get(n)))
	}
	fmt.Println(ft.String())

	bt := report.New("Per-class performance bounds (Gflop/s)", "bound", "value", "vs CSR")
	b := a.Bounds
	add := func(label string, v float64) {
		ratio := "-"
		if b.PCSR > 0 {
			ratio = report.Fx(v / b.PCSR)
		}
		bt.Add(label, report.F(v), ratio)
	}
	bt.Add("P_CSR (baseline)", report.F(b.PCSR), "1.00x")
	add("P_ML", b.PML)
	add("P_IMB", b.PIMB)
	add("P_CMP", b.PCMP)
	add("P_MB", b.PMB)
	add("P_peak", b.Ppeak)
	fmt.Println(bt.String())

	fmt.Printf("classes          %s\n", a.Classes)
	for _, c := range a.Classes.Classes() {
		fmt.Printf("  %-4s %s\n", c, classDescription(c))
	}
	fmt.Printf("optimizations    %s\n", a.Plan.Opt)
	fmt.Printf("optimized        %s -> %s Gflop/s (%s)\n",
		report.F(b.PCSR), report.F(a.Optimized.Gflops),
		report.Fx(a.Optimized.Gflops/maxf(b.PCSR, 1e-12)))
	fmt.Printf("preprocessing    %s\n", report.Seconds(a.Plan.PreprocessSeconds))
	_ = bounds.MicroBenchRuns
}

func classDescription(c classify.Class) string {
	switch c {
	case classify.MB:
		return "memory bandwidth bound: compress indices + vectorize"
	case classify.ML:
		return "memory latency bound: software prefetch x"
	case classify.IMB:
		return "thread imbalance: decompose long rows or auto-schedule"
	case classify.CMP:
		return "compute bound: unroll + vectorize"
	default:
		return ""
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
