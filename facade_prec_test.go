package spmvtuner_test

// Facade-level mixed-precision coverage: the accuracy budget is the
// only door into reduced-precision storage, the reported precision is
// the one that executes, the tuned kernel honors the documented error
// bound, and a reduced plan warm-starts across processes through the
// on-disk plan store.

import (
	"math"
	"testing"

	"github.com/sparsekit/spmvtuner"
)

// bandedMB builds a wide-band matrix that the modeled Broadwell
// analysis classifies bandwidth bound (the symmetry facade test pins
// the same structure); values and probe vectors stay positive so the
// reference result is its own componentwise error scale.
func bandedMB(n, hw int) *spmvtuner.Matrix {
	return buildSymmetric(n, hw)
}

func TestAnalyzePrecisionNeedsBudget(t *testing.T) {
	m := bandedMB(20000, 40)
	exact := spmvtuner.NewTuner(spmvtuner.OnPlatform("bdw")).Analyze(m)
	if exact.Precision != "f64" {
		t.Fatalf("unbudgeted analysis reports precision %q, want f64", exact.Precision)
	}
	a := spmvtuner.NewTuner(
		spmvtuner.OnPlatform("bdw"),
		spmvtuner.WithPrecisionBudget(1e-6),
	).Analyze(m)
	if a.Precision != "f32" {
		t.Fatalf("budgeted modeled-MB analysis reports precision %q, want f32 (%s)",
			a.Precision, a.Optimizations)
	}
}

func TestTunedReducedPrecisionWithinBudget(t *testing.T) {
	m := bandedMB(20000, 40)
	tuner := spmvtuner.NewTuner(
		spmvtuner.OnPlatform("bdw"),
		spmvtuner.WithPrecisionBudget(1e-6),
	)
	defer tuner.Close()
	tuned := tuner.Tune(m)
	if got := tuned.Info().Precision; got != "f32" {
		t.Fatalf("tuned precision %q, want f32", got)
	}
	x := make([]float64, m.Cols())
	for i := range x {
		x[i] = 0.5 + 0.1*float64(i%7)
	}
	want := make([]float64, m.Rows())
	m.MulVec(x, want)
	got := make([]float64, m.Rows())
	tuned.MulVec(x, got)
	for i := range want {
		// All summands are positive, so want[i] bounds the row's
		// magnitude scale; 2e-6 covers the storage bound plus
		// accumulation slack.
		if math.Abs(got[i]-want[i]) > 2e-6*want[i] {
			t.Fatalf("reduced kernel out of budget at %d: %.12g vs %.12g", i, got[i], want[i])
		}
	}
}

func TestReducedPlanWarmStartsAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	m := bandedMB(20000, 40)
	opts := func() []spmvtuner.Option {
		return []spmvtuner.Option{
			spmvtuner.OnPlatform("bdw"),
			spmvtuner.WithPrecisionBudget(1e-6),
			spmvtuner.WithPlanStore(dir),
		}
	}
	t1 := spmvtuner.NewTuner(opts()...)
	cold := t1.Tune(m)
	if cold.Info().Warm {
		t.Fatal("first Tune claims warm")
	}
	if cold.Info().Precision != "f32" {
		t.Fatalf("cold precision %q, want f32", cold.Info().Precision)
	}
	if err := t1.Close(); err != nil {
		t.Fatal(err)
	}

	t2 := spmvtuner.NewTuner(opts()...)
	defer t2.Close()
	warm := t2.Tune(m)
	if !warm.Info().Warm {
		t.Fatal("second process did not warm-start from the stored reduced plan")
	}
	if warm.Info().Precision != "f32" {
		t.Fatalf("warm precision %q, want f32", warm.Info().Precision)
	}
	if warm.Info().Optimizations != cold.Info().Optimizations {
		t.Fatalf("warm plan differs: %q vs %q", warm.Info().Optimizations, cold.Info().Optimizations)
	}
}
