// Package spmvtuner is a matrix- and architecture-adaptive optimizer
// for sparse matrix-vector multiplication (SpMV), reproducing Elafrou,
// Goumas and Koziris, "Performance Analysis and Optimization of Sparse
// Matrix-Vector Multiplication on Modern Multi- and Many-Core
// Processors" (ICPP 2017).
//
// The tuner detects the performance bottlenecks of a sparse matrix on
// a target platform — memory bandwidth (MB), memory latency (ML),
// thread imbalance (IMB), computation (CMP) — and applies only the
// optimizations that address them: column-index delta compression,
// software prefetching, long-row decomposition, adaptive scheduling,
// unrolling and vectorization.
//
// Quick start:
//
//	m, _ := spmvtuner.Load("matrix.mtx")
//	tuned := spmvtuner.NewTuner().Tune(m)
//	y := make([]float64, m.Rows())
//	tuned.MulVec(x, y) // optimized SpMV on the host
//
// Platform models for the paper's machines (Intel Xeon Phi KNC/KNL and
// Broadwell) support what-if analysis without the hardware:
//
//	t := spmvtuner.NewTuner(spmvtuner.OnPlatform("knl"))
//	a := t.Analyze(m) // bounds, classes, chosen optimizations
package spmvtuner

import (
	"fmt"
	"sync"

	"github.com/sparsekit/spmvtuner/internal/calib"
	"github.com/sparsekit/spmvtuner/internal/classify"
	"github.com/sparsekit/spmvtuner/internal/core"
	ex "github.com/sparsekit/spmvtuner/internal/exec"
	"github.com/sparsekit/spmvtuner/internal/machine"
	"github.com/sparsekit/spmvtuner/internal/matrix"
	"github.com/sparsekit/spmvtuner/internal/mmio"
	"github.com/sparsekit/spmvtuner/internal/native"
	"github.com/sparsekit/spmvtuner/internal/planstore"
	"github.com/sparsekit/spmvtuner/internal/sim"
	"github.com/sparsekit/spmvtuner/internal/suite"
)

// Matrix is an immutable sparse matrix in CSR form.
type Matrix struct {
	csr *matrix.CSR
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.csr.NRows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.csr.NCols }

// NNZ returns the stored-element count.
func (m *Matrix) NNZ() int { return m.csr.NNZ() }

// Name returns the matrix name (suite name or file stem), possibly
// empty.
func (m *Matrix) Name() string { return m.csr.Name }

// MulVec computes y = A*x with the plain sequential reference kernel.
// For tuned parallel execution use Tuner.Tune and Tuned.MulVec.
func (m *Matrix) MulVec(x, y []float64) { m.csr.MulVec(x, y) }

// Load reads a Matrix Market (.mtx) file.
func Load(path string) (*Matrix, error) {
	csr, err := mmio.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Matrix{csr: csr}, nil
}

// Save writes the matrix in Matrix Market format.
func Save(path string, m *Matrix) error { return mmio.WriteFile(path, m.csr) }

// Builder accumulates entries for a new matrix.
type Builder struct {
	coo *matrix.COO
}

// NewBuilder starts a rows x cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{coo: matrix.NewCOO(rows, cols)}
}

// Add inserts one entry; duplicates sum.
func (b *Builder) Add(row, col int, val float64) *Builder {
	b.coo.Add(row, col, val)
	return b
}

// Build finalizes the matrix.
func (b *Builder) Build() *Matrix { return &Matrix{csr: b.coo.ToCSR()} }

// SuiteMatrix generates a suite matrix by name at the given scale
// (1.0 = reproduction size): one of the paper's 32 evaluation
// matrices (synthetic stand-ins for the SuiteSparse originals) or one
// of the symmetric SPD recipes (lap2d, lap3d, sym-fem).
func SuiteMatrix(name string, scale float64) (*Matrix, error) {
	csr := suite.ByName(name, scale)
	if csr == nil {
		return nil, fmt.Errorf("spmvtuner: unknown suite matrix %q", name)
	}
	return &Matrix{csr: csr}, nil
}

// SuiteNames lists every SuiteMatrix-resolvable name: the evaluation
// suite in paper order, then the symmetric SPD suite.
func SuiteNames() []string { return suite.Names() }

// Tuner plans optimized SpMV executions.
//
// A Tuner is safe for concurrent use: Tune, Analyze and Close may be
// called from multiple goroutines (the tuner serializes the analysis
// pipeline and the shared native executor internally), and the Tuned
// kernels it returns are independently safe for concurrent multiplies.
//
// Every Tuner carries a plan store: tuning decisions are keyed by the
// matrix's structural fingerprint, so a second Tune of a structurally
// identical matrix — same sparsity, values may differ — skips
// classification and the candidate sweep entirely and reuses the
// stored plan. The default store is in-memory; WithPlanStore persists
// it to disk so warm starts survive process restarts and plans can be
// shipped between hosts (see docs/guide/plans.md).
type Tuner struct {
	mu       sync.Mutex // guards pipeline, store and the shared prepare path
	pipeline *core.Pipeline
	nat      *native.Executor
	store    *planstore.Store
	platform machine.Model
	modeled  bool
	closed   bool // guarded by mu

	// hostModel is the model of the machine kernels actually run on —
	// machine.Host(), with calibrated ceilings applied when
	// WithCalibration is configured. twin is the analytic executor over
	// it: the digital twin that validates shipped plans and prices
	// serving capacity.
	hostModel machine.Model
	twin      *sim.Executor
	cal       calib.Calibration
	calDir    string
	calOn     bool
	calProbed bool
}

// hostProbes is the probe bundle calibration runs against the
// hardware. A package variable so tests can substitute counting fakes
// and prove exactly how often the machine is measured.
var hostProbes = native.HostProbes()

// Option configures a Tuner.
type Option func(*Tuner) error

// OnPlatform analyzes against a modeled platform: "knc", "knl", "bdw"
// or "host". Tuned kernels still execute natively; only the analysis
// uses the model.
func OnPlatform(code string) Option {
	return func(t *Tuner) error {
		mdl, err := machine.ByCodename(code)
		if err != nil {
			return err
		}
		t.platform = mdl
		t.modeled = true
		return nil
	}
}

// WithPlanStore persists tuning decisions under dir (created if
// missing): every cold Tune writes its plan there, and later Tunes —
// in this process or any future one, on this host or another — of a
// fingerprint-identical matrix warm-start from the stored plan
// instead of re-classifying and re-sweeping. The directory holds one
// human-readable JSON file per (matrix fingerprint, platform, plan
// version); see docs/guide/plans.md for the layout and shipping
// guidance.
//
// An unusable directory (permissions, read-only filesystem) fails
// Tuner construction — NewTuner panics, as with every invalid option.
// That is deliberate fail-fast behavior: a serving process whose
// configured plan store cannot be opened should stop at startup, not
// silently re-tune cold on every restart. Callers that prefer to
// degrade to the in-memory store should probe the directory
// themselves and drop the option.
func WithPlanStore(dir string) Option {
	return func(t *Tuner) error {
		s, err := planstore.Open(dir, planstore.DefaultCapacity)
		if err != nil {
			return err
		}
		t.store = s
		return nil
	}
}

// WithCalibration measures this host's real performance ceilings —
// saturated and per-core STREAM bandwidth, cache-resident rate,
// scalar compute rate — and persists the result under dir (created if
// missing) as a versioned JSON artifact, typically the same directory
// as the plan store. The host is probed exactly once, ever: later
// Tuners load the artifact with zero probe runs. Corrupt, stale (the
// machine's thread count changed) or wrong-version artifacts heal by
// re-probing and overwriting.
//
// Calibration turns the analysis model into a digital twin of the
// host: Analyze and modeled predictions price against measured
// ceilings, plans loaded from the plan store are analytically
// re-validated against the twin before being trusted (a plan tuned on
// a different machine re-tunes instead of silently serving), and
// Server.CapacityPlan sizes replica fleets from the measured
// bandwidth budget.
//
// An unusable directory fails Tuner construction, like WithPlanStore.
func WithCalibration(dir string) Option {
	return func(t *Tuner) error {
		if dir == "" {
			return fmt.Errorf("spmvtuner: calibration directory must not be empty")
		}
		t.calDir = dir
		t.calOn = true
		return nil
	}
}

// WithPrecisionBudget grants the planner an accuracy budget: a
// componentwise relative error bound eps the application tolerates on
// y = A*x. With a budget, bandwidth-bound matrices may be stored with
// reduced-precision values — a plain f32 stream (documented bound
// 1e-6) or the split f32+f64-correction stream (bound 1e-12) — halving
// the dominant memory traffic; the planner verifies the actual error
// on each matrix against the f64 reference before committing, and
// non-finite or f32-overflowing values are always carried exactly,
// never silently truncated. Without this option every result stays
// exact f64 — the tuner never trades accuracy by default. See
// docs/guide/precision.md.
func WithPrecisionBudget(eps float64) Option {
	return func(t *Tuner) error {
		if eps <= 0 {
			return fmt.Errorf("spmvtuner: precision budget must be positive")
		}
		t.pipeline.AccuracyBudget = eps
		return nil
	}
}

// WithThresholds overrides the profile-guided classifier
// hyperparameters (defaults: the paper's T_ML=1.25, T_IMB=1.24).
func WithThresholds(tml, timb float64) Option {
	return func(t *Tuner) error {
		if tml <= 0 || timb <= 0 {
			return fmt.Errorf("spmvtuner: thresholds must be positive")
		}
		th := classify.DefaultThresholds()
		th.TML, th.TIMB = tml, timb
		t.pipeline.Thresholds = th
		return nil
	}
}

// NewTuner builds a tuner. Without options it analyzes on a host
// model and executes natively.
func NewTuner(opts ...Option) *Tuner {
	t := &Tuner{platform: machine.Host()}
	t.pipeline = core.New(nil) // executor chosen below, after options
	for _, o := range opts {
		if err := o(t); err != nil {
			panic(err) // options with invalid static arguments are programming errors
		}
	}

	// Resolve the host model before building the native executor: with
	// calibration, the executor describes itself with measured ceilings.
	host := machine.Host()
	if t.calOn {
		c, probed, err := calib.LoadOrMeasure(t.calDir, hostProbes, host)
		if err != nil {
			panic(err) // unusable calibration dir: fail fast, like WithPlanStore
		}
		t.cal, t.calProbed = c, probed
		host = c.Apply(host)
	} else {
		t.cal = calib.FromModel(host)
	}
	t.hostModel = host
	t.nat = native.NewWithModel(host)
	t.twin = sim.New(host)

	if t.modeled {
		if t.platform.Codename == host.Codename {
			// OnPlatform("host") + calibration: model the real machine,
			// not the static guess.
			t.platform = host
		}
		t.pipeline.Exec = sim.New(t.platform)
	} else {
		t.pipeline.Exec = t.nat
	}
	if t.calOn {
		// The calibrated twin gates store-loaded plans: a plan whose
		// recorded prediction the local twin cannot reproduce was tuned
		// on a different machine and is re-tuned instead of trusted.
		t.pipeline.Twin = t.twin
	}
	if t.store == nil {
		t.store = planstore.New(planstore.DefaultCapacity)
	}
	t.pipeline.Store = t.store
	return t
}

// Analysis reports a matrix's diagnosis on the tuner's platform.
type Analysis struct {
	// Classes are the detected bottlenecks, e.g. "{ML,IMB}".
	Classes string
	// Optimizations describes the selected configuration, e.g.
	// "prefetch+split@static-nnz".
	Optimizations string
	// BaselineGflops and OptimizedGflops compare before/after on the
	// analysis platform.
	BaselineGflops  float64
	OptimizedGflops float64
	// PreprocessSeconds is the modeled cost of deciding + converting.
	PreprocessSeconds float64
	// Fingerprint is the matrix's structural identity — the key
	// tuning decisions are stored and shipped under.
	Fingerprint string
	// KernelISA is the instruction set the dispatched kernels execute
	// on this host ("avx512", "avx2", "scalar") — the provenance the
	// plan carries so a warm start on different hardware re-measures.
	KernelISA string
	// Precision is the value-storage precision the plan executes:
	// "f64" (exact, the default), "f32", or "split64" (f32 values plus
	// an exact f64 correction stream). Reduced precisions appear only
	// under WithPrecisionBudget.
	Precision string
	// Warm reports that the decision came from the plan store: no
	// classification and no candidate sweep ran (Tune only; Analyze
	// always diagnoses live).
	Warm bool
}

// Analyze diagnoses the matrix without committing to execution. Safe
// for concurrent use with Tune and other Analyze calls.
func (t *Tuner) Analyze(m *Matrix) Analysis {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Resolve symmetry under the tuner lock: SymmetryKind caches on the
	// matrix, so two concurrent Analyze/Tune calls on the SAME matrix
	// must not both run the detection.
	m.csr.SymmetryKind()
	a := t.pipeline.Analyze(m.csr)
	return Analysis{
		Classes:           a.Classes.String(),
		Optimizations:     a.Plan.Opt.String(),
		BaselineGflops:    a.Bounds.PCSR,
		OptimizedGflops:   a.Optimized.Gflops,
		PreprocessSeconds: a.Plan.PreprocessSeconds,
		Fingerprint:       a.Plan.Fingerprint,
		KernelISA:         a.Plan.KernelISA,
		Precision:         a.Plan.Opt.EffectivePrecision().String(),
	}
}

// Tuned is a matrix bound to its selected optimizations, compiled into
// a persistent kernel: converted formats, schedule partitions and
// reduction buffers are built once at Tune time, and every MulVec after
// that dispatches to the tuner's long-lived worker pool without
// planning work or heap allocation. Safe for concurrent use.
type Tuned struct {
	m    *Matrix
	opt  ex.Optim
	nat  *native.Executor // keeps the worker pool alive for prep
	prep ex.PreparedKernel
	info Analysis
}

// Tune analyzes the matrix and compiles an optimized persistent native
// kernel. Symmetry is resolved up front (one O(NNZ) detection, cached
// on the matrix), so a symmetric matrix transparently gets the SSS
// storage path whenever the planner classifies it bandwidth bound —
// no caller annotation needed.
//
// Tune consults the tuner's plan store first: a hit on the matrix's
// structural fingerprint skips classification and the candidate sweep
// entirely (Info().Warm reports which path ran); a miss tunes,
// measures the chosen configuration, and stores the decision for
// every later Tune. Safe for concurrent use.
func (t *Tuner) Tune(m *Matrix) *Tuned {
	t.mu.Lock()
	defer t.mu.Unlock()
	m.csr.SymmetryKind() // under t.mu: the detection caches onto the matrix
	pl, prep, warm := t.pipeline.Prepare(m.csr)
	if prep == nil {
		// Modeled analysis: the plan came from the simulator, but
		// execution is always native.
		prep = t.nat.Prepare(m.csr, pl.Opt)
	}
	info := Analysis{
		Classes:           pl.Classes.String(),
		Optimizations:     pl.Opt.String(),
		PreprocessSeconds: pl.PreprocessSeconds,
		Fingerprint:       pl.Fingerprint,
		KernelISA:         pl.KernelISA,
		Precision:         pl.Opt.EffectivePrecision().String(),
		Warm:              warm,
	}
	if pl.MeasuredGflops > 0 {
		info.OptimizedGflops = pl.MeasuredGflops
	} else {
		info.OptimizedGflops = pl.PredictedGflops
	}
	return &Tuned{m: m, opt: pl.Opt, nat: t.nat, prep: prep, info: info}
}

// Release frees the prepared resources Tune built for m — converted
// formats and cached kernels held by the tuner's executor — without
// touching the plan store or any other matrix. Kernels already
// returned by Tune stay usable (they own their structures); a later
// Tune of m warm-starts from the stored plan and recompiles. This is
// the per-entry eviction path a memory-budgeted serving layer needs:
// Close tears down everything, Release only one matrix's footprint.
// Releasing a never-tuned matrix is a no-op. Safe for concurrent use.
func (t *Tuner) Release(m *Matrix) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nat.Release(m.csr)
}

// Close flushes the plan store and releases the tuner's persistent
// worker pool. It is idempotent and optional — a dropped Tuner is
// reclaimed by a finalizer — and kernels tuned from it remain usable
// afterwards via a transient fallback path. The first error from
// either step is returned; both always run.
func (t *Tuner) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	serr := t.store.Close()
	nerr := t.nat.Close()
	if serr != nil {
		return serr
	}
	return nerr
}

// MulVec computes y = A*x with the tuned parallel kernel. Steady-state
// calls are allocation-free and safe from concurrent goroutines. x and
// y must not overlap (matrix.Aliased): y is written while x is still
// being gathered, so an aliased call would silently compute garbage.
func (k *Tuned) MulVec(x, y []float64) {
	if len(x) != k.m.Cols() || len(y) != k.m.Rows() {
		panic(fmt.Sprintf("spmvtuner: MulVec dimension mismatch: x=%d y=%d for %dx%d",
			len(x), len(y), k.m.Rows(), k.m.Cols()))
	}
	if matrix.Aliased(x, y) {
		panic("spmvtuner: MulVec input and output must not alias")
	}
	k.prep.MulVec(x, y)
}

// MulVecBatch computes ys[i] = A*xs[i] for every pair, keeping the
// worker pool hot across the whole batch — the serving shape where one
// tuned matrix multiplies many user vectors back to back. The engine
// repartitions the batch into blocks of up to 8 vectors and streams
// the matrix once per block (see docs/guide/batching.md), so large
// batches run well past single-vector throughput. The aliasing rule
// is blanket: no input vector may overlap ANY output vector.
func (k *Tuned) MulVecBatch(xs, ys [][]float64) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("spmvtuner: MulVecBatch length mismatch: %d inputs, %d outputs", len(xs), len(ys)))
	}
	for i := range xs {
		if len(xs[i]) != k.m.Cols() || len(ys[i]) != k.m.Rows() {
			panic(fmt.Sprintf("spmvtuner: MulVecBatch dimension mismatch at %d: x=%d y=%d for %dx%d",
				i, len(xs[i]), len(ys[i]), k.m.Rows(), k.m.Cols()))
		}
	}
	// The aliasing rule is blanket across the batch, not per pair: an
	// earlier block's outputs are written before a later block's inputs
	// are packed, so ANY shared input/output buffer reads overwritten
	// data.
	if matrix.AnyAliased(xs, ys) {
		panic("spmvtuner: MulVecBatch inputs and outputs must not alias")
	}
	k.prep.MulVecBatch(xs, ys)
}

// MulMat computes Y = A*X for nrhs right-hand sides stored in the
// interleaved block layout: X is one []float64 of length Cols()*nrhs
// where element j of vector l lives at X[j*nrhs+l], and Y likewise
// with Rows()*nrhs. The matrix is streamed once per block of
// right-hand sides — the blocked SpMM serving path, with no packing
// cost when the caller already holds interleaved blocks. X and Y must
// not alias.
func (k *Tuned) MulMat(x, y []float64, nrhs int) {
	if nrhs < 1 {
		panic(fmt.Sprintf("spmvtuner: MulMat nrhs %d < 1", nrhs))
	}
	if len(x) != k.m.Cols()*nrhs || len(y) != k.m.Rows()*nrhs {
		panic(fmt.Sprintf("spmvtuner: MulMat dimension mismatch: x=%d y=%d for %dx%d with nrhs=%d",
			len(x), len(y), k.m.Rows(), k.m.Cols(), nrhs))
	}
	if matrix.Aliased(x, y) {
		panic("spmvtuner: MulMat input and output must not alias")
	}
	k.prep.MulMat(x, y, nrhs)
}

// Info returns the tuning decision.
func (k *Tuned) Info() Analysis { return k.info }

// Classes returns the detected bottleneck classes, e.g. "{ML,IMB}".
func (k *Tuned) Classes() string { return k.info.Classes }

// Optimizations returns the selected configuration string.
func (k *Tuned) Optimizations() string { return k.info.Optimizations }
