// Benchmarks regenerating every table and figure of the paper (one
// bench per artifact; see DESIGN.md's experiment index) plus native
// kernel micro-benchmarks. The experiment benches run at a reduced
// suite scale so `go test -bench=.` completes in minutes; use
// cmd/spmvbench -scale 1.0 for the full reproduction (recorded in
// EXPERIMENTS.md).
package spmvtuner

import (
	"fmt"
	"testing"

	ex "github.com/sparsekit/spmvtuner/internal/exec"
	"github.com/sparsekit/spmvtuner/internal/experiments"
	"github.com/sparsekit/spmvtuner/internal/formats"
	"github.com/sparsekit/spmvtuner/internal/gen"
	"github.com/sparsekit/spmvtuner/internal/kernels"
	"github.com/sparsekit/spmvtuner/internal/machine"
	"github.com/sparsekit/spmvtuner/internal/native"
	"github.com/sparsekit/spmvtuner/internal/sim"
	"github.com/sparsekit/spmvtuner/internal/solver"
)

// benchCfg keeps experiment benches affordable; EXPERIMENTS.md records
// the scale-1.0 runs.
var benchCfg = experiments.Config{Scale: 0.1, CorpusSize: 60}

// BenchmarkFig1 regenerates Fig 1: speedups of blindly applied single
// optimizations on the KNC model.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig1(benchCfg)
		if len(res.Rows) != 32 {
			b.Fatal("fig1 incomplete")
		}
	}
}

// BenchmarkFig3 regenerates Fig 3: baseline + per-class bounds on KNC.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3(benchCfg)
		if len(res.Rows) != 32 {
			b.Fatal("fig3 incomplete")
		}
	}
}

// BenchmarkTable4 regenerates Table IV: feature-guided classifier
// accuracy under Leave-One-Out cross validation.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table4(benchCfg)
		b.ReportMetric(100*res.Rows[1].CV.ExactMatchRatio, "exact%")
		b.ReportMetric(100*res.Rows[1].CV.PartialMatchRatio, "partial%")
	}
}

// BenchmarkFig7KNC regenerates Fig 7a (no Inspector-Executor on KNC).
func BenchmarkFig7KNC(b *testing.B) { benchFig7(b, "knc") }

// BenchmarkFig7KNL regenerates Fig 7b.
func BenchmarkFig7KNL(b *testing.B) { benchFig7(b, "knl") }

// BenchmarkFig7Broadwell regenerates Fig 7c.
func BenchmarkFig7Broadwell(b *testing.B) { benchFig7(b, "bdw") }

func benchFig7(b *testing.B, platform string) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(platform, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgProfVsMKL, "prof-x")
		b.ReportMetric(res.AvgFeatVsMKL, "feat-x")
		if res.AvgIEVsMKL > 0 {
			b.ReportMetric(res.AvgIEVsMKL, "ie-x")
		}
	}
}

// BenchmarkTable5 regenerates Table V: amortization iterations on KNL.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table5(benchCfg)
		for _, row := range res.Rows {
			if row.Optimizer == "feature-guided" {
				b.ReportMetric(row.Avg, "feat-iters")
			}
		}
	}
}

// BenchmarkAblateDelta regenerates ablation A1 (delta width).
func BenchmarkAblateDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblateDelta(benchCfg)
	}
}

// BenchmarkAblateSplit regenerates ablation A2 (split threshold).
func BenchmarkAblateSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblateSplit(benchCfg)
	}
}

// BenchmarkAblateSched regenerates ablation A3 (schedule policies).
func BenchmarkAblateSched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblateSched(benchCfg)
	}
}

// BenchmarkAblatePrefetch regenerates ablation A4 (prefetch MLP).
func BenchmarkAblatePrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblatePrefetch(benchCfg)
	}
}

// BenchmarkAblatePartitionedML regenerates ablation A5 (partitioned
// irregularity detection).
func BenchmarkAblatePartitionedML(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PartitionedML(benchCfg)
	}
}

// BenchmarkSimulatedSpMV times one cost-model evaluation (the unit of
// every modeled experiment) on a mid-size matrix.
func BenchmarkSimulatedSpMV(b *testing.B) {
	e := sim.New(machine.KNL())
	m := gen.UniformRandom(200000, 8, 1)
	e.Run(ex.Config{Matrix: m}) // build the profile outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(ex.Config{Matrix: m, Opt: ex.Optim{Vectorize: true, Prefetch: true}})
	}
}

// Native kernel micro-benchmarks: the real Go kernels on the host.
func benchNativeKernel(b *testing.B, k kernels.RangeKernel) {
	m := gen.UniformRandom(100000, 10, 1)
	x := make([]float64, m.NCols)
	y := make([]float64, m.NRows)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(m.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k(m, x, y, 0, m.NRows)
	}
}

// BenchmarkKernelCSR times the scalar Fig 2 kernel.
func BenchmarkKernelCSR(b *testing.B) { benchNativeKernel(b, kernels.CSRRange) }

// BenchmarkKernelUnrolled4 times the 4-way unrolled kernel.
func BenchmarkKernelUnrolled4(b *testing.B) { benchNativeKernel(b, kernels.CSRUnrolled4Range) }

// BenchmarkKernelVector8 times the 8-accumulator vectorization stand-in.
func BenchmarkKernelVector8(b *testing.B) { benchNativeKernel(b, kernels.CSRVector8Range) }

// BenchmarkKernelPrefetch times the software-prefetch kernel.
func BenchmarkKernelPrefetch(b *testing.B) { benchNativeKernel(b, kernels.CSRPrefetchRange) }

// BenchmarkKernelDelta times the DeltaCSR kernel.
func BenchmarkKernelDelta(b *testing.B) {
	m := gen.Banded(100000, 12, 0.9, 1)
	d := formats.Compress(m)
	x := make([]float64, m.NCols)
	y := make([]float64, m.NRows)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(d.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.MulVec(x, y)
	}
}

// BenchmarkKernelSplit times the two-phase decomposed kernel (Fig 6).
func BenchmarkKernelSplit(b *testing.B) {
	m := gen.FewDenseRows(100000, 5, 3, 60000, 1)
	s := formats.SplitAuto(m)
	x := make([]float64, m.NCols)
	y := make([]float64, m.NRows)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MulVec(x, y)
	}
}

// BenchmarkNativeTunedSpMV times the full tuned parallel multiply on
// the host through the public API.
func BenchmarkNativeTunedSpMV(b *testing.B) {
	m, err := SuiteMatrix("poisson3Db", 0.2)
	if err != nil {
		b.Fatal(err)
	}
	tuned := NewTuner().Tune(m)
	x := make([]float64, m.Cols())
	y := make([]float64, m.Rows())
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuned.MulVec(x, y)
	}
}

// BenchmarkMulVecReuse compares the rebuild-every-call execution path
// against the persistent prepared kernel on the same matrix and
// configuration. "oneshot" repartitions rows and spawns fresh
// goroutines per multiply (the pre-engine shape); "prepared" dispatches
// to the parked worker pool and must report 0 allocs/op — the
// steady-state serving contract of the execution engine.
func BenchmarkMulVecReuse(b *testing.B) {
	e := native.New()
	defer e.Close()
	opt := ex.Optim{Vectorize: true, Prefetch: true}
	// Small: fork/join and planning overhead dominate. Large: the
	// kernel is memory-bound and the engine's win is the 0-alloc
	// steady state.
	for _, size := range []struct {
		name  string
		scale float64
	}{{"small", 0.02}, {"large", 0.2}} {
		m, err := SuiteMatrix("poisson3Db", size.scale)
		if err != nil {
			b.Fatal(err)
		}
		x := make([]float64, m.Cols())
		y := make([]float64, m.Rows())
		for i := range x {
			x[i] = 1
		}
		b.Run(size.name+"/oneshot", func(b *testing.B) {
			e.MulVecOnce(m.csr, opt, x, y) // probe threads outside the loop
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.MulVecOnce(m.csr, opt, x, y)
			}
		})
		b.Run(size.name+"/prepared", func(b *testing.B) {
			p := e.Prepare(m.csr, opt)
			p.MulVec(x, y) // warm: formats converted, workers parked
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.MulVec(x, y)
			}
		})
	}
}

// BenchmarkMulVecBatch compares the per-vector loop against the
// blocked SpMM batch path at k = 1, 4, 8 on a generated MB-bound
// matrix (out of cache, bandwidth dominated). Blocked streams the
// matrix once per block of k vectors, so at k=8 the per-vector matrix
// traffic is 1/8th of the loop's — the acceptance target is ≥ 1.5x
// loop throughput, and the blocked results are held to the per-vector
// reference by the differential tests. Both sub-benchmarks report
// per-vector ns and must stay allocation-free in steady state.
func BenchmarkMulVecBatch(b *testing.B) {
	// ~18M nnz of regular banded structure: the MB-class shape (the
	// suite's FEM_3D_thermal2 family) whose multiply streams the matrix
	// at the bandwidth limit — exactly where blocking pays.
	m := gen.Banded(600000, 16, 0.9, 1)
	e := native.New()
	defer e.Close()
	p := e.Prepare(m, ex.Optim{Vectorize: true})
	for _, k := range []int{1, 4, 8} {
		xs := make([][]float64, k)
		ys := make([][]float64, k)
		for l := range xs {
			xs[l] = make([]float64, m.NCols)
			for i := range xs[l] {
				xs[l][i] = float64(i%5) + float64(l)
			}
			ys[l] = make([]float64, m.NRows)
		}
		b.Run(fmt.Sprintf("k%d/loop", k), func(b *testing.B) {
			p.MulVec(xs[0], ys[0]) // warm
			b.SetBytes(m.Bytes())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.MulVec(xs[i%k], ys[i%k])
			}
		})
		b.Run(fmt.Sprintf("k%d/blocked", k), func(b *testing.B) {
			p.MulVecBatch(xs, ys) // warm: pack buffers allocated here
			b.SetBytes(m.Bytes())
			b.ReportAllocs()
			b.ResetTimer()
			// b.N counts single multiplies in both paths so ns/op and
			// MB/s compare directly.
			for i := 0; i < b.N; i += k {
				p.MulVecBatch(xs, ys)
			}
		})
	}
}

// BenchmarkStreamTriad reports the host's measured memory bandwidth:
// the saturated rate at the full hardware-thread count (the roofline's
// B_max — the old nt=0 form clamped to ONE thread and reported that as
// host bandwidth), with the single-thread rate labeled separately.
func BenchmarkStreamTriad(b *testing.B) {
	nt := machine.Host().Threads()
	b.Run("saturated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gbs := native.StreamTriad(1<<22, nt, 1)
			b.ReportMetric(gbs, "GB/s")
		}
	})
	b.Run("single-thread", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gbs := native.StreamTriad(1<<22, 1, 1)
			b.ReportMetric(gbs, "GB/s")
		}
	})
}

// BenchmarkCGSolve times a CG solve with the tuned kernel (the Table V
// application context).
func BenchmarkCGSolve(b *testing.B) {
	g := gen.Poisson2D(120, 120)
	bvec := make([]float64, g.NRows)
	for i := range bvec {
		bvec[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.CG(g.MulVec, bvec, solver.Options{Tol: 1e-8})
		if err != nil || !res.Converged {
			b.Fatal("CG failed")
		}
	}
}
