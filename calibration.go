package spmvtuner

import (
	ex "github.com/sparsekit/spmvtuner/internal/exec"
	"github.com/sparsekit/spmvtuner/internal/matrix"
	"github.com/sparsekit/spmvtuner/internal/plan"
)

// HostCalibration describes the performance ceilings the tuner's
// digital twin prices against: measured when WithCalibration is
// configured, the host model's static defaults otherwise.
type HostCalibration struct {
	// Machine is the platform codename the ceilings describe.
	Machine string
	// NumCPU, Cores and ThreadsPerCore are the host topology.
	NumCPU         int
	Cores          int
	ThreadsPerCore int
	// PerCoreGBs is the single-thread STREAM triad bandwidth; MainGBs
	// the saturated main-memory rate (the roofline's B_max); LLCGBs
	// the cache-resident rate.
	PerCoreGBs float64
	MainGBs    float64
	LLCGBs     float64
	// ScalarGflops is the measured single-thread scalar multiply-add
	// rate; zero when not probed.
	ScalarGflops float64
	// UsableThreads is the smallest thread count that saturated memory
	// bandwidth.
	UsableThreads int
	// Calibrated reports whether the ceilings were measured on the
	// hardware (WithCalibration) rather than taken from static
	// defaults. Probed reports whether THIS Tuner ran the probes:
	// false with Calibrated true means the persisted artifact was
	// loaded, costing zero probe time.
	Calibrated bool
	Probed     bool
}

// Calibration reports the ceilings the tuner's analysis and capacity
// planning price against.
func (t *Tuner) Calibration() HostCalibration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return HostCalibration{
		Machine:        t.cal.Machine,
		NumCPU:         t.cal.NumCPU,
		Cores:          t.cal.Cores,
		ThreadsPerCore: t.cal.ThreadsPerCore,
		PerCoreGBs:     t.cal.PerCoreGBs,
		MainGBs:        t.cal.MainGBs,
		LLCGBs:         t.cal.LLCGBs,
		ScalarGflops:   t.cal.ScalarGflops,
		UsableThreads:  t.cal.UsableThreads,
		Calibrated:     t.calOn,
		Probed:         t.calProbed,
	}
}

// priceOnTwin analytically prices one matrix on the tuner's digital
// twin — the stored plan when one exists, a twin-decided plan
// otherwise. Zero hardware measurements.
func (t *Tuner) priceOnTwin(cm *matrix.CSR) (plan.Plan, ex.Result) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cm.SymmetryKind() // under t.mu, as in Tune: the detection caches onto the matrix
	return t.pipeline.PriceOn(t.twin, cm)
}
