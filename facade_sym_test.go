package spmvtuner_test

// Facade-level symmetry coverage: the tuner must resolve a matrix's
// symmetry transparently at Tune/Analyze time and the tuned kernel —
// whatever storage the planner chose — must compute the same SpMV as
// the reference.

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sparsekit/spmvtuner"
)

// buildSymmetric assembles a symmetric banded matrix through the
// public Builder (so the symmetry kind starts unknown, exactly the
// programmatic path the facade's detection exists for).
func buildSymmetric(n, hw int) *spmvtuner.Matrix {
	rng := rand.New(rand.NewSource(9))
	b := spmvtuner.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, float64(hw)*2+1)
		for d := 1; d <= hw; d++ {
			if j := i + d; j < n {
				v := 0.5 + rng.Float64()
				b.Add(i, j, v)
				b.Add(j, i, v)
			}
		}
	}
	return b.Build()
}

func TestTunedSymmetricTransparent(t *testing.T) {
	m := buildSymmetric(3000, 12)
	tuner := spmvtuner.NewTuner()
	defer tuner.Close()
	tuned := tuner.Tune(m)

	rng := rand.New(rand.NewSource(4))
	x := make([]float64, m.Cols())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, m.Rows())
	m.MulVec(x, want)
	got := make([]float64, m.Rows())
	tuned.MulVec(x, got)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("tuned symmetric-capable kernel diverged at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestAnalyzeProposesSymmetricOnModeledMB: on the Broadwell model a
// wide-band symmetric matrix classifies bandwidth bound, and the
// planner's joint optimization must include the symmetric storage
// knob — deterministic because the analysis is fully modeled.
func TestAnalyzeProposesSymmetricOnModeledMB(t *testing.T) {
	m := buildSymmetric(20000, 40)
	a := spmvtuner.NewTuner(spmvtuner.OnPlatform("bdw")).Analyze(m)
	if !containsSym(a.Optimizations) {
		t.Fatalf("modeled MB analysis of a symmetric matrix proposed %q, want a +sym configuration",
			a.Optimizations)
	}
}

func containsSym(opts string) bool {
	for i := 0; i+3 <= len(opts); i++ {
		if opts[i:i+3] == "sym" {
			return true
		}
	}
	return false
}
