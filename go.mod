module github.com/sparsekit/spmvtuner

go 1.24
