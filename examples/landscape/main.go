// landscape: a miniature of the paper's Fig 7 — classify and optimize
// a handful of structurally different matrices on all three modeled
// platforms, showing how the same matrix hits different bottlenecks on
// different machines (e.g. human_gene1 is latency bound on KNC but
// bandwidth bound on KNL, Section IV-C).
package main

import (
	"fmt"

	"github.com/sparsekit/spmvtuner"
)

func main() {
	matrices := []string{
		"poisson3Db",  // unstructured FEM: irregular accesses
		"consph",      // clustered FEM: bandwidth
		"ASIC_680k",   // circuit with ultra-dense rows: imbalance
		"webbase-1M",  // short-row web crawl: loop overhead
		"human_gene1", // dense scattered rows: platform-dependent
	}
	platforms := []string{"knc", "knl", "bdw"}

	fmt.Printf("%-14s", "matrix")
	for _, p := range platforms {
		fmt.Printf("  %-34s", p)
	}
	fmt.Println()

	for _, name := range matrices {
		m, err := spmvtuner.SuiteMatrix(name, 0.5)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-14s", name)
		for _, p := range platforms {
			a := spmvtuner.NewTuner(spmvtuner.OnPlatform(p)).Analyze(m)
			fmt.Printf("  %-12s %5.1f->%5.1f Gflop/s  ", a.Classes, a.BaselineGflops, a.OptimizedGflops)
		}
		fmt.Println()
	}
	fmt.Println("\nclasses: MB=bandwidth ML=latency IMB=imbalance CMP=compute ({}=nothing to fix)")
}
