// pagerank: the graph-analytics workload from the paper's
// introduction. PageRank's power iteration is a repeated SpMV with a
// scale-free web-graph matrix — exactly the imbalanced, irregular
// structure (flickr/eu-2005-style) the IMB and ML bottleneck classes
// exist for. The tuner detects them and picks the decomposition /
// prefetch path automatically.
package main

import (
	"fmt"
	"math"
	"time"

	"github.com/sparsekit/spmvtuner"
	"github.com/sparsekit/spmvtuner/internal/gen"
)

func main() {
	// A power-law web graph: 150k pages, hubs with thousands of links.
	g := gen.PowerLaw(150000, 12, 1.8, 20000, 7)
	n := g.NRows

	// PageRank distributes a page's rank over its outgoing links:
	// build the column-stochastic transition matrix P^T so that
	// rank' = P^T rank is one SpMV.
	outDeg := make([]float64, n)
	for i := 0; i < n; i++ {
		outDeg[i] = float64(g.RowPtr[i+1] - g.RowPtr[i])
	}
	b := spmvtuner.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := g.RowPtr[i]; j < g.RowPtr[i+1]; j++ {
			b.Add(int(g.ColInd[j]), i, 1/outDeg[i])
		}
	}
	pt := b.Build()
	fmt.Printf("graph: %d pages, %d links\n", n, pt.NNZ())

	// Tune once; the prepared kernel keeps its worker pool hot across
	// the hundreds of multiplies below.
	tuner := spmvtuner.NewTuner()
	defer tuner.Close()
	tuned := tuner.Tune(pt)
	fmt.Printf("tuner: classes %s, optimizations %s\n", tuned.Classes(), tuned.Optimizations())

	// Power iteration with damping.
	const damping = 0.85
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	start := time.Now()
	iters := 0
	for ; iters < 200; iters++ {
		tuned.MulVec(rank, next)
		var delta float64
		base := (1 - damping) / float64(n)
		for i := range next {
			next[i] = base + damping*next[i]
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < 1e-10 {
			iters++
			break
		}
	}
	elapsed := time.Since(start)

	// Report the top pages.
	top, topRank := 0, 0.0
	var sum float64
	for i, r := range rank {
		sum += r
		if r > topRank {
			top, topRank = i, r
		}
	}
	fmt.Printf("pagerank: %d iterations in %v (%.1f SpMV/s)\n",
		iters, elapsed.Round(time.Millisecond), float64(iters)/elapsed.Seconds())
	fmt.Printf("mass %.6f (should be ~1), top page %d with rank %.2e\n", sum, top, topRank)

	// Personalized PageRank for several seed pages at once — the
	// multi-user serving scenario. MulVecBatch pushes the whole batch
	// through the prepared kernel back to back, one power step per
	// round, so the matrix stays hot in cache across users.
	seeds := []int{0, 1, 2, 3}
	ranks := make([][]float64, len(seeds))
	nexts := make([][]float64, len(seeds))
	for s := range seeds {
		ranks[s] = make([]float64, n)
		ranks[s][seeds[s]] = 1
		nexts[s] = make([]float64, n)
	}
	start = time.Now()
	const ppIters = 30
	for it := 0; it < ppIters; it++ {
		tuned.MulVecBatch(ranks, nexts)
		for s := range seeds {
			for i := range nexts[s] {
				nexts[s][i] *= damping
			}
			nexts[s][seeds[s]] += 1 - damping // teleport to the seed only
			ranks[s], nexts[s] = nexts[s], ranks[s]
		}
	}
	fmt.Printf("personalized: %d seeds x %d iterations in %v (%.1f SpMV/s batched)\n",
		len(seeds), ppIters, time.Since(start).Round(time.Millisecond),
		float64(len(seeds)*ppIters)/time.Since(start).Seconds())
	for s, seed := range seeds {
		best, bestRank := 0, 0.0
		for i, r := range ranks[s] {
			if i != seed && r > bestRank {
				best, bestRank = i, r
			}
		}
		fmt.Printf("  seed %d: closest page %d (rank %.2e)\n", seed, best, bestRank)
	}
}
