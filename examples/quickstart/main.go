// Quickstart: build a sparse matrix, let the tuner detect its
// bottlenecks, and run the optimized SpMV — the 30-second tour of the
// public API.
package main

import (
	"fmt"
	"math/rand"

	"github.com/sparsekit/spmvtuner"
)

func main() {
	// A matrix with a nasty structure: mostly short random rows plus a
	// handful of very long ones (the circuit-simulation signature that
	// defeats naive row partitioning).
	const n = 200000
	rng := rand.New(rand.NewSource(42))
	b := spmvtuner.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		for k := 0; k < 4; k++ {
			b.Add(i, rng.Intn(n), rng.NormFloat64())
		}
	}
	for _, hub := range []int{1000, 77777, 123456} {
		for j := 0; j < n; j += 2 {
			b.Add(hub, j, 0.01)
		}
	}
	m := b.Build()
	fmt.Printf("matrix: %d x %d with %d nonzeros\n", m.Rows(), m.Cols(), m.NNZ())

	// Tune: the optimizer classifies the matrix's bottlenecks and
	// picks matching optimizations (Table II of the paper).
	tuned := spmvtuner.NewTuner().Tune(m)
	fmt.Printf("detected bottlenecks: %s\n", tuned.Classes())
	fmt.Printf("selected optimizations: %s\n", tuned.Optimizations())

	// Multiply.
	x := make([]float64, m.Cols())
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, m.Rows())
	tuned.MulVec(x, y)

	// Sanity: compare one entry against the reference kernel.
	ref := make([]float64, m.Rows())
	m.MulVec(x, ref)
	fmt.Printf("y[0] = %.6f (reference %.6f)\n", y[0], ref[0])

	// What-if analysis on the paper's platforms, no hardware needed.
	for _, platform := range []string{"knc", "knl", "bdw"} {
		a := spmvtuner.NewTuner(spmvtuner.OnPlatform(platform)).Analyze(m)
		fmt.Printf("%-4s: classes %-14s %6.2f -> %6.2f Gflop/s via %s\n",
			platform, a.Classes, a.BaselineGflops, a.OptimizedGflops, a.Optimizations)
	}
}
