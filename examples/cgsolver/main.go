// cgsolver: the iterative-solver scenario that motivates the paper's
// overhead analysis (Section IV-D). A Conjugate Gradient solve calls
// SpMV hundreds of times; the tuner's one-time preprocessing amortizes
// across iterations. The example solves a 2D Poisson problem with the
// tuned kernel and reports the amortization arithmetic of Table V.
package main

import (
	"fmt"
	"time"

	"github.com/sparsekit/spmvtuner"
	"github.com/sparsekit/spmvtuner/internal/gen"
	"github.com/sparsekit/spmvtuner/internal/solver"
)

func main() {
	// 300x300 five-point Laplacian: 90,000 unknowns, SPD.
	grid := gen.Poisson2D(300, 300)
	b := spmvtuner.NewBuilder(grid.NRows, grid.NCols)
	for i := 0; i < grid.NRows; i++ {
		for j := grid.RowPtr[i]; j < grid.RowPtr[i+1]; j++ {
			b.Add(i, int(grid.ColInd[j]), grid.Val[j])
		}
	}
	m := b.Build()
	fmt.Printf("system: %d unknowns, %d nonzeros\n", m.Rows(), m.NNZ())

	// Tune once: the kernel is compiled into a prepared object bound to
	// the tuner's persistent worker pool, so every CG iteration below
	// multiplies without planning work or allocation.
	tuner := spmvtuner.NewTuner()
	defer tuner.Close()
	t0 := time.Now()
	tuned := tuner.Tune(m)
	tPre := time.Since(t0)
	fmt.Printf("tuning: classes %s, optimizations %s, preprocessing %v\n",
		tuned.Classes(), tuned.Optimizations(), tPre.Round(time.Microsecond))

	rhs := make([]float64, m.Rows())
	for i := range rhs {
		rhs[i] = 1
	}

	// Solve with the plain reference SpMV, then with the tuned kernel.
	solveWith := func(label string, mul solver.MulVec) solver.Result {
		start := time.Now()
		res, err := solver.CG(mul, rhs, solver.Options{Tol: 1e-8, MaxIters: 2000})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-9s %4d iterations, residual %.2e, %v\n",
			label, res.Iters, res.Residual, time.Since(start).Round(time.Millisecond))
		return res
	}
	r1 := solveWith("reference", m.MulVec)
	r2 := solveWith("tuned", func(x, y []float64) { tuned.MulVec(x, y) })

	if r1.Iters != r2.Iters {
		fmt.Printf("note: iteration counts differ (%d vs %d) — floating point reassociation\n",
			r1.Iters, r2.Iters)
	}

	// Table V arithmetic: how many iterations amortize the tuning?
	perRef := timePerSpMV(m.MulVec, m.Rows(), m.Cols())
	perTuned := timePerSpMV(func(x, y []float64) { tuned.MulVec(x, y) }, m.Rows(), m.Cols())
	n := solver.AmortizationIters(tPre.Seconds(), perRef, perTuned)
	fmt.Printf("amortization: t_pre=%v, per-SpMV %v -> %v, N_iters,min = %.0f\n",
		tPre.Round(time.Microsecond),
		time.Duration(perRef*1e9).Round(time.Microsecond),
		time.Duration(perTuned*1e9).Round(time.Microsecond), n)
}

// timePerSpMV measures one operation (best of 5, after warmup).
func timePerSpMV(mul solver.MulVec, rows, cols int) float64 {
	x := make([]float64, cols)
	y := make([]float64, rows)
	for i := range x {
		x[i] = 1
	}
	mul(x, y)
	best := 0.0
	for k := 0; k < 5; k++ {
		start := time.Now()
		mul(x, y)
		if s := time.Since(start).Seconds(); best == 0 || s < best {
			best = s
		}
	}
	return best
}
